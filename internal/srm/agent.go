package srm

import (
	"fmt"
	"time"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// lossRecord tracks one lost packet's recovery lifecycle on one host.
type lossRecord struct {
	detectedAt  sim.Time
	recoveredAt sim.Time
	recovered   bool
	info        RecoveryInfo

	// k is the back-off exponent for the next (re)schedule: the initial
	// request is drawn from the base interval (factor 2^0), and every
	// transmission or suppression back-off doubles it.
	k            int
	timer        sim.Timer
	abstainUntil sim.Time

	// abandoned marks a loss given up on after Params.MaxRequestRounds
	// back-off rounds: no further request timers are armed and the loss
	// no longer counts as outstanding. A straggling repair can still
	// recover it.
	abandoned bool

	// foreignRequests counts other hosts' requests observed for this
	// loss and firstRequestAt the instant of the first request event
	// (own or foreign) — inputs to adaptive timer adjustment.
	foreignRequests int
	firstRequestAt  sim.Time
}

// replyState tracks reply scheduling and abstinence for one packet on a
// host that has the packet.
type replyState struct {
	timer        sim.Timer
	requestor    topology.NodeID
	reqDistSrc   time.Duration
	pendingUntil sim.Time

	// engaged marks that this host scheduled or sent a reply for the
	// packet; requestAt and repliesSeen feed adaptive timer adjustment.
	engaged     bool
	requestAt   sim.Time
	repliesSeen int
}

// streamState is a host's per-source reception and recovery state. SRM
// supports any number of concurrent single-source transmissions over
// the shared multicast group (§2); every stream recovers independently.
type streamState struct {
	source topology.NodeID
	// base is the release watermark: per-packet state for sequence
	// numbers below it has been discarded mid-run (see releaseThrough).
	// received, losses and replies are indexed by seq-base. Invariant:
	// base ≤ held ≤ cursor, so the classification and detection paths
	// never index below the window.
	base int
	// held is the length of the contiguous received prefix: this host
	// holds every sequence number below held.
	held     int
	received []bool
	// cursor: every sequence number below it has been classified as
	// received or detected lost.
	cursor int
	// highestKnown is the highest sequence number known to exist in
	// this stream, -1 initially.
	highestKnown int
	// advertPending is the highest sequence number for which a deferred
	// session-triggered detection pass has been scheduled.
	advertPending int

	// abandonedOpen counts losses abandoned after bounded retry and not
	// (yet) recovered by a straggling repair: the run's reliability
	// reconciliation balances MissingIn against it.
	abandonedOpen int

	// losses and replies are dense seq-indexed windows (nil = no state
	// for that packet), not maps: both sit on the per-packet request and
	// reply paths, where hashing every lookup dominated full-scale runs,
	// and sequence numbers are contiguous from 0 by construction.
	losses  []*lossRecord
	replies []*replyState

	// replyArena and lossArena are chunk allocators for the records the
	// windows point at: one record is created per classified sequence
	// number, and allocating them individually made these two sites the
	// top allocators of a full-scale run. Each chunk hands out its zeroed
	// slots exactly once; a chunk is reclaimed when the window release
	// drops the last pointer into it, a lag bounded by the chunk size.
	replyArena []replyState
	lossArena  []lossRecord
}

// arenaChunk is the record-arena chunk size: large enough to cut the
// per-record allocation count by that factor, small enough that a
// chunk pinned by one straggling record costs a few KB.
const arenaChunk = 64

// newReply hands out one zeroed replyState from the arena.
func (st *streamState) newReply() *replyState {
	if len(st.replyArena) == 0 {
		st.replyArena = make([]replyState, arenaChunk)
	}
	rs := &st.replyArena[0]
	st.replyArena = st.replyArena[1:]
	return rs
}

// newLoss hands out one zeroed lossRecord from the arena.
func (st *streamState) newLoss() *lossRecord {
	if len(st.lossArena) == 0 {
		st.lossArena = make([]lossRecord, arenaChunk)
	}
	ls := &st.lossArena[0]
	st.lossArena = st.lossArena[1:]
	return ls
}

func newStreamState(source topology.NodeID) *streamState {
	return &streamState{
		source:        source,
		highestKnown:  -1,
		advertPending: -1,
	}
}

// has reports possession of seq within the stream. Released sequence
// numbers report true: release is gated on every live host holding
// them.
func (st *streamState) has(seq int) bool {
	if seq < 0 {
		return false
	}
	if seq < st.base {
		return true
	}
	idx := seq - st.base
	return idx < len(st.received) && st.received[idx]
}

// loss returns the loss record for seq, nil when the packet was never
// classified lost or its record was released.
func (st *streamState) loss(seq int) *lossRecord {
	idx := seq - st.base
	if idx < 0 || idx >= len(st.losses) {
		return nil
	}
	return st.losses[idx]
}

// setLoss installs the loss record for seq, growing the window. seq is
// never below base: losses are detected at the cursor, which never
// trails the release watermark.
func (st *streamState) setLoss(seq int, ls *lossRecord) {
	idx := seq - st.base
	for len(st.losses) <= idx {
		st.losses = append(st.losses, nil)
	}
	st.losses[idx] = ls
}

// reply returns the reply state for seq, nil when absent or released.
func (st *streamState) reply(seq int) *replyState {
	idx := seq - st.base
	if idx < 0 || idx >= len(st.replies) {
		return nil
	}
	return st.replies[idx]
}

// ensureReply returns the reply state for seq, creating it on first
// use. A released coordinate yields a throwaway so a straggling control
// message mutates nothing live — release lag makes that unreachable in
// a correct run, and memory-safe in a buggy one.
func (st *streamState) ensureReply(seq int) *replyState {
	idx := seq - st.base
	if idx < 0 {
		return &replyState{}
	}
	for len(st.replies) <= idx {
		st.replies = append(st.replies, nil)
	}
	rs := st.replies[idx]
	if rs == nil {
		rs = st.newReply()
		st.replies[idx] = rs
	}
	return rs
}

// markReceived records possession of seq and advances the held prefix.
// seq is never below base: has(seq < base) is true, so every arrival
// path deduplicates released packets before marking.
func (st *streamState) markReceived(seq int) {
	idx := seq - st.base
	for len(st.received) <= idx {
		st.received = append(st.received, false)
	}
	st.received[idx] = true
	for st.held-st.base < len(st.received) && st.received[st.held-st.base] {
		st.held++
	}
}

// releasableThrough returns the highest watermark n ≤ held such that
// every sequence number below n is safe to discard on this host: the
// packet is held and no reply machinery for it is live. A sequence with
// an armed reply timer must stay — releasing it would silently swallow
// the pending reply, an observable protocol change — and one inside a
// reply-abstinence period must stay so a late request keeps being
// suppressed rather than answered by fresh zero state.
func (st *streamState) releasableThrough(now sim.Time) int {
	n := st.base
	for ; n < st.held; n++ {
		if rs := st.reply(n); rs != nil && (rs.timer.Active() || now.Before(rs.pendingUntil)) {
			break
		}
	}
	return n
}

// releaseThrough discards per-packet state below n. The caller
// guarantees n is releasable on every live host, so nothing live is
// dropped; surviving tails shift to the front of their arrays and the
// vacated cells are zeroed so everything they referenced is
// reclaimable. No engine operations happen here — timers are never
// cancelled — so release is invisible to the run's event stream,
// finish time and fingerprint.
func (st *streamState) releaseThrough(n int) {
	if n > st.held {
		n = st.held
	}
	if n <= st.base {
		return
	}
	drop := n - st.base
	st.received = dropPrefix(st.received, drop)
	st.losses = dropPrefix(st.losses, drop)
	st.replies = dropPrefix(st.replies, drop)
	st.base = n
}

// dropPrefix returns s without its first drop elements, shifting the
// survivors to the front in place and zeroing the vacated tail so
// anything it referenced is reclaimable. The backing array is kept:
// its capacity is bounded by the peak in-flight window, not the run
// length, and retaining it lets the steady release→refill cycle run
// allocation-free — the old copy-to-a-fresh-exact-size-array strategy
// made every release allocate a tail that the very next window append
// had to grow again, churn that ranked among the top allocators of a
// full-scale run.
func dropPrefix[T any](s []T, drop int) []T {
	if drop >= len(s) {
		clear(s)
		return s[:0]
	}
	n := copy(s, s[drop:])
	clear(s[n:])
	return s[:n]
}

// window returns the number of per-seq cells currently retained across
// the stream's received, loss and reply windows.
func (st *streamState) window() int {
	return len(st.received) + len(st.losses) + len(st.replies)
}

func (st *streamState) noteExists(seq int) {
	if seq > st.highestKnown {
		st.highestKnown = seq
	}
}

// Agent is one SRM endpoint. Every group member both receives all
// streams and may originate its own stream with Transmit. It implements
// netsim.Host. All methods run on the simulation goroutine.
type Agent struct {
	id topology.NodeID

	// eng and net are interfaces so a sharded run can hand the agent its
	// shard-local handles (sim.Shard, netsim.Port); serial runs pass the
	// engine and network directly.
	eng sim.Sched
	net netsim.Endpoint
	rng *sim.RNG
	p   Params
	obs Observer
	ext Extension

	// dist holds one-way distance estimates indexed by NodeID; -1 marks
	// "no estimate yet". A flat slice (not a map) because Distance sits
	// on the request/reply timer-draw hot path and node IDs are dense.
	dist []time.Duration
	echo *echoState
	// streams is NodeID-indexed like dist (nil = no state for that
	// source); stream lookup happens on every delivered packet.
	streams []*streamState

	stopped bool
	crashed bool
	// absent marks a graceful departure (Leave): the host is silent like
	// a crashed one but keeps all state — it announced its exit rather
	// than failing. lateJoin marks that the host (re)joined mid-session,
	// arming the per-stream reliability floor: the first post-join
	// evidence of each stream fixes where this host's loss detection
	// begins, instead of seq 0.
	absent   bool
	lateJoin bool
	// sessionTimer is the handle of the pending self-rescheduling
	// session tick, retained so Crash can cancel it (a crashed host must
	// contribute zero pending events, not an inert one per period).
	sessionTimer sim.Timer
	missingDists int
	// outstanding counts detected-but-unrecovered losses across all
	// streams, so the monitor's per-period Outstanding polls are O(1)
	// instead of walking every loss record ever created.
	outstanding int

	adaptiveCfg AdaptiveConfig
	adaptive    adaptiveState
}

var _ netsim.Host = (*Agent)(nil)

// NewAgent constructs an SRM endpoint at node id. obs may be nil; ext
// may be nil for plain SRM. The agent registers itself with the network.
func NewAgent(eng sim.Sched, net netsim.Endpoint, rng *sim.RNG, id topology.NodeID, p Params, obs Observer, ext Extension) (*Agent, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if obs == nil {
		obs = NopObserver{}
	}
	a := &Agent{
		id:      id,
		eng:     eng,
		net:     net,
		rng:     rng,
		p:       p,
		obs:     obs,
		ext:     ext,
		dist:    newDistTable(net.Tree().NumNodes()),
		echo:    newEchoState(),
		streams: make([]*streamState, net.Tree().NumNodes()),
	}
	net.AttachHost(id, a)
	return a, nil
}

// ID returns the agent's node.
func (a *Agent) ID() topology.NodeID { return a.id }

// Params returns the agent's initial scheduling parameters.
func (a *Agent) Params() Params { return a.p }

// stream returns (creating on first use) the state for the given
// source's stream.
func (a *Agent) stream(source topology.NodeID) *streamState {
	for int(source) >= len(a.streams) {
		a.streams = append(a.streams, nil)
	}
	st := a.streams[source]
	if st == nil {
		st = newStreamState(source)
		a.streams[source] = st
	}
	return st
}

// Sources lists the sources this agent has state for, in ascending
// NodeID order.
func (a *Agent) Sources() []topology.NodeID {
	var out []topology.NodeID
	for id, st := range a.streams {
		if st != nil {
			out = append(out, topology.NodeID(id))
		}
	}
	return out
}

// Stop halts session-message rescheduling. In-flight timers drain
// naturally: the already-armed session tick still fires (and does
// nothing), so a run's final virtual time — which the v1 run
// fingerprint digests — is unchanged by stopping. Cancelling the timer
// here would shorten the post-quiesce drain of every crash-free run and
// invalidate all pinned fingerprints; only Crash reclaims the timer.
func (a *Agent) Stop() { a.stopped = true }

// Crash makes the host fail-stop: it ceases processing deliveries,
// sending session messages, and firing protocol timers. The paper's
// §3.3 argues CESRM tolerates exactly this — cached repliers that leave
// or crash stop answering expedited requests, losses fall back to SRM,
// and the cache evolves to a live replier.
func (a *Agent) Crash() {
	a.crashed = true
	a.stopped = true
	a.cancelProtocolTimers()
}

// cancelProtocolTimers cancels the session tick and every armed loss
// and reply timer: the silence transition shared by Crash and Leave. A
// silent host must contribute zero pending events, not inert ones.
func (a *Agent) cancelProtocolTimers() {
	a.eng.Cancel(a.sessionTimer)
	for _, st := range a.streams {
		if st == nil {
			continue
		}
		for _, ls := range st.losses {
			if ls != nil {
				a.eng.Cancel(ls.timer)
			}
		}
		for _, rs := range st.replies {
			if rs != nil {
				a.eng.Cancel(rs.timer)
			}
		}
	}
}

// Crashed reports whether Crash has been called.
func (a *Agent) Crashed() bool { return a.crashed }

// Leave gracefully departs the group (§3.3 membership dynamics): the
// host goes silent — no session ticks, no protocol timers, no
// deliveries processed — but, unlike Crash, keeps every bit of state:
// it announced its exit rather than failing. The chaos controller pairs
// the departure with a group-wide cache invalidation (the departure
// advert). Leaving a crashed host is a harness bug and panics.
func (a *Agent) Leave() {
	if a.crashed {
		panic(fmt.Sprintf("srm: crashed host %d leaving", a.id))
	}
	if a.absent {
		panic(fmt.Sprintf("srm: absent host %d leaving twice", a.id))
	}
	a.absent = true
	a.stopped = true
	a.cancelProtocolTimers()
}

// Join (re)admits an absent host mid-session. Reception and recovery
// state restarts empty with the late-join reliability floor armed: each
// stream's floor is fixed by the first post-join evidence of it (data,
// session advert, request or reply), so the joiner is responsible for
// data from its join onward, never for the history it was not a member
// for. Distance estimates survive — a graceful leave is not amnesia.
// Joining a present host is a harness bug and panics.
func (a *Agent) Join() {
	if !a.absent {
		panic(fmt.Sprintf("srm: joining host %d that is present", a.id))
	}
	a.absent = false
	a.stopped = false
	a.lateJoin = true
	a.streams = make([]*streamState, a.net.Tree().NumNodes())
	a.outstanding = 0
	a.StartSessions()
}

// Absent reports whether the host has gracefully left and not rejoined.
func (a *Agent) Absent() bool { return a.absent }

// Restart rejoins a crashed host to the group with amnesia, the
// fail-stop restart model of §3.3's dynamic environments: all
// reception, loss, reply, distance-estimate, echo and adaptive state is
// discarded — exactly what a process restarting from scratch holds —
// and the periodic session exchange resumes, so the host re-learns
// inter-host distances and re-synchronizes stream state from its peers'
// session advertisements, re-detecting and re-recovering every packet
// it is missing through the ordinary SRM machinery. Restarting a live
// host is a harness bug and panics.
func (a *Agent) Restart() {
	if !a.crashed {
		panic(fmt.Sprintf("srm: restarting host %d that never crashed", a.id))
	}
	a.crashed = false
	a.stopped = false
	n := a.net.Tree().NumNodes()
	a.dist = newDistTable(n)
	a.echo = newEchoState()
	a.streams = make([]*streamState, n)
	a.outstanding = 0
	a.adaptive = adaptiveState{}
	a.StartSessions()
}

// Outstanding returns the number of detected losses not yet recovered,
// across all streams.
func (a *Agent) Outstanding() int { return a.outstanding }

// ClassifiedThrough returns the lowest sequence number of the source's
// stream not yet classified as received-or-lost.
func (a *Agent) ClassifiedThrough(source topology.NodeID) int {
	return a.stream(source).cursor
}

// ReleasableThrough returns the watermark through which this host's
// per-packet state for the source's stream could be discarded right now
// (see streamState.releasableThrough). A host with no state for the
// stream reports 0.
func (a *Agent) ReleasableThrough(source topology.NodeID) int {
	st := a.peek(source)
	if st == nil {
		return 0
	}
	return st.releasableThrough(a.eng.Now())
}

// ReleaseThrough discards this host's per-packet state for the source's
// stream below n. The experiment layer calls it only after every live
// host reported ReleasableThrough ≥ n and a drain lag covered in-flight
// traffic, so no future event can reference the dropped window.
func (a *Agent) ReleaseThrough(source topology.NodeID, n int) {
	if st := a.peek(source); st != nil {
		st.releaseThrough(n)
	}
}

// PacketWindow returns the number of per-seq state cells currently
// retained across all streams; tests pin release effectiveness with it.
func (a *Agent) PacketWindow() int {
	n := 0
	for _, st := range a.streams {
		if st != nil {
			n += st.window()
		}
	}
	return n
}

// peek returns the stream state for source without creating it.
func (a *Agent) peek(source topology.NodeID) *streamState {
	if int(source) >= len(a.streams) {
		return nil
	}
	return a.streams[source]
}

// Has reports whether the agent holds packet seq of the source's stream
// (received it, recovered it, or originally sent it).
func (a *Agent) Has(source topology.NodeID, seq int) bool {
	st := a.peek(source)
	return st != nil && st.has(seq)
}

// MissingIn returns how many of the packets [0, n) of the source's
// stream the agent does not hold. Zero after a run means full
// reliability was achieved.
func (a *Agent) MissingIn(source topology.NodeID, n int) int {
	missing := 0
	for i := 0; i < n; i++ {
		if !a.Has(source, i) {
			missing++
		}
	}
	return missing
}

// EverLost reports whether the agent ever classified seq of the
// source's stream as lost, regardless of later recovery.
func (a *Agent) EverLost(source topology.NodeID, seq int) bool {
	st := a.peek(source)
	return st != nil && st.loss(seq) != nil
}

// newDistTable returns a distance table with every entry marked
// unknown (-1). A recorded estimate of zero stays distinguishable from
// "never seen", matching the semantics the map representation had.
func newDistTable(n int) []time.Duration {
	d := make([]time.Duration, n)
	for i := range d {
		d[i] = -1
	}
	return d
}

// Distance returns the agent's one-way distance estimate to node n,
// falling back to Params.DefaultDistance when no session message from n
// has been seen.
func (a *Agent) Distance(n topology.NodeID) time.Duration {
	if n == a.id {
		return 0
	}
	if int(n) < len(a.dist) {
		if d := a.dist[n]; d >= 0 {
			return d
		}
	}
	a.missingDists++
	return a.p.DefaultDistance
}

// MissingDistanceLookups counts Distance calls that fell back to the
// default; nonzero values indicate an inadequate warm-up.
func (a *Agent) MissingDistanceLookups() int { return a.missingDists }

// SetDistance primes the distance estimate to node n, as a completed
// session exchange would. Tests and bootstrap paths use it to start
// from a converged state.
func (a *Agent) SetDistance(n topology.NodeID, d time.Duration) { a.dist[n] = d }

// StartSessions begins periodic session-message multicast, with the
// first message sent after a random fraction of the session period so
// that hosts do not fire in lockstep.
func (a *Agent) StartSessions() {
	a.sessionTimer = a.eng.Schedule(a.rng.UniformDuration(0, a.p.SessionPeriod), a.sessionTick)
}

func (a *Agent) sessionTick(now sim.Time) {
	if a.stopped {
		return
	}
	highest := make(map[topology.NodeID]int, 2)
	for src, st := range a.streams {
		if st != nil && st.highestKnown >= 0 {
			highest[topology.NodeID(src)] = st.highestKnown
		}
	}
	m := &SessionMsg{From: a.id, SentAt: now, Highest: highest}
	if a.p.DistanceMode == DistEchoRTT {
		m.Echoes = a.echo.echoes(now)
	}
	a.net.Multicast(a.id, &netsim.Packet{Class: netsim.Control, Session: true, Msg: m})
	a.obs.SessionSent(a.id)
	a.sessionTimer = a.eng.Schedule(a.p.SessionPeriod, a.sessionTick)
}

// Transmit multicasts original packet seq of this host's own stream.
func (a *Agent) Transmit(seq int) {
	if a.crashed {
		panic(fmt.Sprintf("srm: crashed host %d transmitting", a.id))
	}
	st := a.stream(a.id)
	st.markReceived(seq)
	st.noteExists(seq)
	st.cursor = seq + 1
	a.net.Multicast(a.id, &netsim.Packet{Class: netsim.Payload, Msg: &DataMsg{Source: a.id, Seq: seq}})
}

// Deliver implements netsim.Host.
func (a *Agent) Deliver(now sim.Time, p *netsim.Packet) {
	if a.crashed || a.absent {
		return
	}
	switch m := p.Msg.(type) {
	case *DataMsg:
		a.onData(now, m)
	case *SessionMsg:
		a.onSession(now, m)
	case *RequestMsg:
		// Expedited requests are a CESRM concern handled by the wrapper
		// in internal/core before reaching this dispatcher; a plain SRM
		// agent ignores any that arrive.
		if !m.Expedited {
			a.onRequest(now, m)
		}
	case *ReplyMsg:
		a.onReply(now, m)
	default:
		panic(fmt.Sprintf("srm: host %d received unknown message %T", a.id, p.Msg))
	}
}

func (a *Agent) onData(now sim.Time, m *DataMsg) {
	a.receivePacket(now, a.streamFloored(m.Source, m.Seq), m.Seq, nil)
}

// streamFloored returns the stream state for source, creating it on
// first use. On a host that joined mid-session, a stream first seen
// after the join opens at the given reliability floor: base, held and
// cursor start at floor, so everything below it reads as held
// (has(seq < base) is true) and loss detection begins at floor — the
// first post-join evidence of the stream — rather than seq 0. The
// floor depends on what that evidence is: a data or reply packet is
// itself owed (floor = its seq), while a session advert or foreign
// request only proves older data existed (floor = one past it).
func (a *Agent) streamFloored(source topology.NodeID, floor int) *streamState {
	if st := a.peek(source); st != nil {
		return st
	}
	st := a.stream(source)
	if a.lateJoin && source != a.id && floor > 0 {
		st.base, st.held, st.cursor = floor, floor, floor
	}
	return st
}

// receivePacket handles arrival of packet seq, via original data
// (reply == nil) or a repair reply.
func (a *Agent) receivePacket(now sim.Time, st *streamState, seq int, reply *ReplyMsg) {
	st.noteExists(seq)
	if st.has(seq) {
		return // duplicate
	}
	st.markReceived(seq)
	if ls := st.loss(seq); ls != nil && !ls.recovered {
		ls.recovered = true
		ls.recoveredAt = now
		if ls.abandoned {
			// An abandoned loss already left the outstanding count; a
			// straggling repair closes its reconciliation debt instead.
			st.abandonedOpen--
		} else {
			a.outstanding--
		}
		a.eng.Cancel(ls.timer)
		info := RecoveryInfo{
			Requestor:   topology.None,
			Replier:     topology.None,
			OwnRequests: ls.info.OwnRequests,
			Reschedules: ls.info.Reschedules,
		}
		if reply != nil {
			info.Expedited = reply.Expedited
			info.Requestor = reply.Requestor
			info.Replier = reply.Replier
		}
		ls.info = info
		a.obs.Recovered(a.id, st.source, seq, now, info)
		a.observeRequestRecovery(st, ls)
	}
	// Classify any earlier packets this arrival reveals as missing.
	a.detectThrough(now, st, seq-1)
	if st.cursor == seq {
		st.cursor = seq + 1
	}
	if a.ext != nil {
		a.ext.PacketReceived(now, st.source, seq)
	}
}

// detectThrough classifies every unclassified sequence number up to and
// including x, detecting losses for those not received. A host never
// detects losses on its own stream.
func (a *Agent) detectThrough(now sim.Time, st *streamState, x int) {
	if st.source == a.id {
		return
	}
	for ; st.cursor <= x; st.cursor++ {
		if !st.has(st.cursor) {
			a.detectLoss(now, st, st.cursor)
		}
	}
}

// detectLoss begins recovery of packet seq (§2.1): schedule a request
// timer uniformly within [C1*d, (C1+C2)*d] of the distance to the
// source, and give the CESRM extension its chance to expedite.
func (a *Agent) detectLoss(now sim.Time, st *streamState, seq int) {
	if st.loss(seq) != nil {
		return
	}
	ls := st.newLoss()
	ls.detectedAt = now
	st.setLoss(seq, ls)
	a.outstanding++
	a.scheduleRequest(st, ls, seq)
	ls.k = 1
	a.obs.LossDetected(a.id, st.source, seq, now)
	if a.ext != nil {
		a.ext.LossDetected(now, st.source, seq)
	}
}

// scheduleRequest arms the request timer for the loss using the current
// back-off exponent.
func (a *Agent) scheduleRequest(st *streamState, ls *lossRecord, seq int) {
	d := a.Distance(st.source)
	factor := a.backoffFactor(ls.k)
	lo := sim.Scale(d, a.p.C1*factor)
	hi := sim.Scale(d, (a.p.C1+a.p.C2)*factor)
	ls.timer = a.eng.Schedule(a.rng.UniformDuration(lo, hi), func(now sim.Time) {
		a.requestTimerFired(now, st, seq)
	})
}

func (a *Agent) backoffFactor(k int) float64 {
	if k > a.p.MaxBackoff {
		k = a.p.MaxBackoff
	}
	return float64(uint64(1) << uint(k))
}

// requestTimerFired multicasts a repair request for seq and schedules
// the next round (§2.1).
func (a *Agent) requestTimerFired(now sim.Time, st *streamState, seq int) {
	ls := st.loss(seq)
	if ls == nil || ls.recovered {
		return
	}
	m := &RequestMsg{
		Source:          st.source,
		Seq:             seq,
		Requestor:       a.id,
		ReqDistToSource: a.Distance(st.source),
		TurningPoint:    topology.None,
	}
	a.net.Multicast(a.id, &netsim.Packet{Class: netsim.Control, Msg: m})
	a.obs.RequestSent(a.id, st.source, seq, ls.k-1)
	ls.info.OwnRequests++
	if ls.firstRequestAt == 0 {
		ls.firstRequestAt = now
	}
	// Schedule the next recovery round with a doubled interval and set
	// the back-off abstinence period 2^k*C3*d.
	a.rescheduleRequest(now, st, ls, seq)
}

// rescheduleRequest moves the loss to its next recovery round, arming a
// new timer with the doubled interval and starting the back-off
// abstinence period — unless the loss has exhausted its bounded retry
// budget, in which case recovery is abandoned instead of arming yet
// another exponential timer (the structural fix for the clock-runaway
// bug class: no request timer ever outlives its round budget).
func (a *Agent) rescheduleRequest(now sim.Time, st *streamState, ls *lossRecord, seq int) {
	if a.p.MaxRequestRounds > 0 && ls.k >= a.p.MaxRequestRounds {
		a.abandonRequest(st, ls, seq)
		return
	}
	a.eng.Cancel(ls.timer)
	a.scheduleRequest(st, ls, seq)
	d := a.Distance(st.source)
	ls.abstainUntil = now.Add(sim.Scale(d, a.p.C3*a.backoffFactor(ls.k)))
	ls.k++
}

// abandonRequest gives up on recovering seq after bounded retry: the
// request timer is cancelled for good, the loss stops counting as
// outstanding (so the run can quiesce), and the abandonment is emitted
// as a typed protocol event. The packet stays missing unless a
// straggling repair delivers it; the experiment layer reconciles the
// final missing count against AbandonedIn.
func (a *Agent) abandonRequest(st *streamState, ls *lossRecord, seq int) {
	if ls.abandoned || ls.recovered {
		return
	}
	ls.abandoned = true
	a.eng.Cancel(ls.timer)
	a.outstanding--
	st.abandonedOpen++
	a.obs.RequestAbandoned(a.id, st.source, seq, ls.k)
}

// AbandonedIn returns how many losses of the source's stream this host
// abandoned after bounded retry and never subsequently received.
func (a *Agent) AbandonedIn(source topology.NodeID) int {
	st := a.peek(source)
	if st == nil {
		return 0
	}
	return st.abandonedOpen
}

// onRequest processes a multicast repair request (§2.1, §2.2).
func (a *Agent) onRequest(now sim.Time, m *RequestMsg) {
	st := a.streamFloored(m.Source, m.Seq+1)
	st.noteExists(m.Seq)
	if ls := st.loss(m.Seq); ls != nil && !ls.recovered {
		// We share the loss. If our own request is scheduled and we are
		// outside the back-off abstinence period, this request
		// suppresses ours: back off to the next round.
		ls.foreignRequests++
		if ls.firstRequestAt == 0 {
			ls.firstRequestAt = now
		}
		if now.Before(ls.abstainUntil) {
			return // same round; discard
		}
		a.rescheduleRequest(now, st, ls, m.Seq)
		ls.info.Reschedules++
		return
	}
	if !st.has(m.Seq) {
		// We neither have the packet nor have classified it lost yet;
		// SRM detects losses from data gaps and session messages only.
		return
	}
	a.considerReply(now, st, m)
}

// considerReply schedules a repair reply for a request if none is
// scheduled or pending (§2.2).
func (a *Agent) considerReply(now sim.Time, st *streamState, m *RequestMsg) {
	rs := st.ensureReply(m.Seq)
	if now.Before(rs.pendingUntil) {
		return // reply abstinence: discard the request
	}
	if rs.timer.Active() {
		return // a reply is already scheduled
	}
	d := a.Distance(m.Requestor)
	lo := sim.Scale(d, a.p.D1)
	hi := sim.Scale(d, a.p.D1+a.p.D2)
	rs.requestor = m.Requestor
	rs.reqDistSrc = m.ReqDistToSource
	rs.engaged = true
	rs.requestAt = now
	seq := m.Seq
	rs.timer = a.eng.Schedule(a.rng.UniformDuration(lo, hi), func(now sim.Time) {
		a.replyTimerFired(now, st, seq)
	})
}

// replyTimerFired multicasts the scheduled repair reply and starts the
// reply abstinence period.
func (a *Agent) replyTimerFired(now sim.Time, st *streamState, seq int) {
	rs := st.reply(seq)
	if rs == nil || !st.has(seq) {
		return
	}
	m := &ReplyMsg{
		Source:                 st.source,
		Seq:                    seq,
		Replier:                a.id,
		Requestor:              rs.requestor,
		ReqDistToSource:        rs.reqDistSrc,
		ReplierDistToRequestor: a.Distance(rs.requestor),
	}
	a.net.Multicast(a.id, &netsim.Packet{Class: netsim.Payload, Msg: m})
	a.obs.ReplySent(a.id, st.source, seq, false)
	rs.pendingUntil = now.Add(sim.Scale(a.Distance(rs.requestor), a.p.D3))
	a.noteReplyEvent(now, rs)
}

// onReply processes a repair reply: recover the packet if we were
// missing it, cancel any scheduled reply for it, and observe the reply
// abstinence period (§2.2).
func (a *Agent) onReply(now sim.Time, m *ReplyMsg) {
	st := a.streamFloored(m.Source, m.Seq)
	rs := st.ensureReply(m.Seq)
	if rs.timer.Active() {
		a.eng.Cancel(rs.timer)
	}
	abstain := now.Add(sim.Scale(a.Distance(m.Requestor), a.p.D3))
	if abstain.After(rs.pendingUntil) {
		rs.pendingUntil = abstain
	}
	if rs.engaged {
		a.noteReplyEvent(now, rs)
	}
	a.receivePacket(now, st, m.Seq, m)
	if a.ext != nil {
		a.ext.ReplyObserved(now, m, a.EverLost(m.Source, m.Seq))
	}
}

// noteReplyEvent records a reply observation (own send or foreign
// receipt) for a packet this host engaged in replying to, feeding the
// adaptive reply-timer averages: the first reply of a round samples the
// reply delay with no duplicate; later replies are duplicate events.
func (a *Agent) noteReplyEvent(now sim.Time, rs *replyState) {
	rs.repliesSeen++
	if !a.adaptiveCfg.Enabled {
		return
	}
	d := a.Distance(rs.requestor)
	if rs.repliesSeen == 1 {
		a.observeReplyOutcome(rs, 0, now.Sub(rs.requestAt), d)
	} else {
		a.observeReplyOutcome(rs, 1, 0, 0)
	}
}

// onSession records the sender's distance and detects losses implied by
// the sender's highest known sequence numbers. Detection is deferred by
// DetectionSlack: session messages are 0-byte control packets that can
// outrun in-flight data packets, which pay per-hop serialization delay.
func (a *Agent) onSession(now sim.Time, m *SessionMsg) {
	switch a.p.DistanceMode {
	case DistOneWay:
		a.dist[m.From] = time.Duration(now.Sub(m.SentAt))
	case DistEchoRTT:
		a.echo.record(m.From, m.SentAt, now)
		if e, ok := m.Echoes[a.id]; ok {
			if rtt, ok := rttFromEcho(now, e); ok {
				a.dist[m.From] = rtt / 2
			}
		}
	}
	// Iterate sources in sorted order: each iteration may schedule an
	// engine event, and Go map order would make event sequence numbers —
	// and therefore the run fingerprint — nondeterministic as soon as a
	// session message advertises two or more sources. (The wire mode's
	// replay oracle turned this sim-only latent assumption into a
	// hard requirement.)
	for _, src := range sortedNodeKeys(m.Highest) {
		highest := m.Highest[src]
		if highest < 0 {
			continue
		}
		st := a.streamFloored(src, highest+1)
		st.noteExists(highest)
		if src == a.id || highest < st.cursor || highest <= st.advertPending {
			continue
		}
		st.advertPending = highest
		h := highest
		stream := st
		a.eng.Schedule(a.p.DetectionSlack, func(now sim.Time) {
			// The slack timer is fire-and-forget, so Crash and Leave
			// cannot cancel it: a silent host must not detect losses, and
			// after a restart or rejoin the captured stream object is an
			// orphan — losses recorded on it could never be recovered
			// (replies resolve against the new stream), leaving the
			// request back-off loop running forever.
			if a.crashed || a.absent || a.peek(stream.source) != stream {
				return
			}
			a.detectThrough(now, stream, h)
		})
	}
}

// LossReport summarizes one loss for metrics extraction.
type LossReport struct {
	Source      topology.NodeID
	Seq         int
	DetectedAt  sim.Time
	Recovered   bool
	RecoveredAt sim.Time
	Info        RecoveryInfo
}

// Losses returns reports for every loss this agent detected across all
// streams, ordered by (source, seq). Records released mid-run (see
// ReleaseThrough) are absent; metric paths that need them fold their
// contribution online instead.
func (a *Agent) Losses() []LossReport {
	var out []LossReport
	for src, st := range a.streams {
		if st == nil {
			continue
		}
		for idx, ls := range st.losses {
			if ls == nil {
				continue
			}
			out = append(out, LossReport{
				Source:      topology.NodeID(src),
				Seq:         st.base + idx,
				DetectedAt:  ls.detectedAt,
				Recovered:   ls.recovered,
				RecoveredAt: ls.recoveredAt,
				Info:        ls.info,
			})
		}
	}
	return out
}

// ---- CESRM extension surface (§3.2, §3.3) ----

// ReplyBlocked reports whether a reply for seq of the source's stream is
// currently scheduled or pending on this host; an expedited replier
// must stay silent in that case (§3.2).
func (a *Agent) ReplyBlocked(now sim.Time, source topology.NodeID, seq int) bool {
	st := a.peek(source)
	if st == nil {
		return false
	}
	rs := st.reply(seq)
	if rs == nil {
		return false
	}
	return rs.timer.Active() || now.Before(rs.pendingUntil)
}

// UnicastExpeditedRequest sends an expedited request for seq of the
// source's stream to the chosen replier, annotated with the cached
// turning point (None without router assistance).
func (a *Agent) UnicastExpeditedRequest(source topology.NodeID, seq int, replier, turningPoint topology.NodeID) {
	if a.crashed || a.absent {
		panic(fmt.Sprintf("srm: silent host %d sending expedited request", a.id))
	}
	m := &RequestMsg{
		Source:          source,
		Seq:             seq,
		Requestor:       a.id,
		ReqDistToSource: a.Distance(source),
		Expedited:       true,
		TurningPoint:    turningPoint,
	}
	a.net.Unicast(a.id, replier, &netsim.Packet{Class: netsim.Control, Msg: m})
	a.obs.ExpRequestSent(a.id, source, seq)
}

// SendExpeditedReply immediately transmits an expedited reply for the
// expedited request m, provided this host has the packet and no reply
// for it is scheduled or pending. When subcast is true (router-assisted
// mode, §3.3) and the request carries a turning point, the reply is
// unicast to the turning-point router and subcast downstream from it;
// otherwise it is multicast to the whole group. Returns whether a reply
// was sent.
func (a *Agent) SendExpeditedReply(now sim.Time, m *RequestMsg, subcast bool) bool {
	if a.crashed {
		panic(fmt.Sprintf("srm: crashed host %d sending expedited reply", a.id))
	}
	st := a.stream(m.Source)
	if !st.has(m.Seq) || a.ReplyBlocked(now, m.Source, m.Seq) {
		return false
	}
	reply := &ReplyMsg{
		Source:                 m.Source,
		Seq:                    m.Seq,
		Replier:                a.id,
		Requestor:              m.Requestor,
		ReqDistToSource:        m.ReqDistToSource,
		ReplierDistToRequestor: a.Distance(m.Requestor),
		Expedited:              true,
	}
	pkt := &netsim.Packet{Class: netsim.Payload, Msg: reply}
	if subcast && m.TurningPoint != topology.None {
		a.net.UnicastThenSubcast(a.id, m.TurningPoint, pkt)
	} else {
		a.net.Multicast(a.id, pkt)
	}
	a.obs.ReplySent(a.id, m.Source, m.Seq, true)
	rs := st.ensureReply(m.Seq)
	rs.pendingUntil = now.Add(sim.Scale(a.Distance(m.Requestor), a.p.D3))
	return true
}
