module cesrm

go 1.22
