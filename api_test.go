package cesrm_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"cesrm"
)

// TestPublicAPIEndToEnd drives the whole library through the public
// facade only: generate a trace, inspect locality, run both protocols,
// and read the paper's metrics.
func TestPublicAPIEndToEnd(t *testing.T) {
	tr, err := cesrm.GenerateTrace(cesrm.TraceSpec{
		Name:         "api",
		Topology:     cesrm.TreeSpec{Receivers: 8, Depth: 3},
		NumPackets:   1500,
		Period:       80 * time.Millisecond,
		TargetLosses: 450,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if loc := cesrm.AnalyzeLocality(tr); loc.LocalityRatio() < 2 {
		t.Fatalf("locality ratio %.1f too low", loc.LocalityRatio())
	}

	pair, err := cesrm.RunPair(tr, cesrm.PairConfig{Base: cesrm.RunConfig{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if pair.LatencyReductionPct() <= 0 {
		t.Fatal("CESRM not faster than SRM via public API")
	}
	if _, ok := pair.ExpeditedSuccess(); !ok {
		t.Fatal("no expedited statistics")
	}
	if pair.SRM.Fingerprint == "" || pair.SRM.Fingerprint == pair.CESRM.Fingerprint {
		t.Fatalf("bad fingerprints: SRM %q CESRM %q", pair.SRM.Fingerprint, pair.CESRM.Fingerprint)
	}

	// The determinism audit and the event timeline, via the facade.
	res, err := cesrm.VerifyDeterminism(cesrm.RunConfig{Trace: tr, Protocol: cesrm.CESRM, Seed: 9, KeepEvents: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != pair.CESRM.Fingerprint {
		t.Fatal("audit run's fingerprint differs from the pair's CESRM run")
	}
	var buf bytes.Buffer
	if err := cesrm.WriteEventsNDJSON(&buf, res.Events); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty event timeline")
	}
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	entry, ok := cesrm.TraceByName("WRN951216")
	if !ok {
		t.Fatal("catalog lookup failed")
	}
	tr, err := entry.Load(0.005)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cesrm.MarshalTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := cesrm.UnmarshalTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalLosses() != tr.TotalLosses() {
		t.Fatal("round trip changed the trace")
	}
	if len(cesrm.TraceCatalog()) != 14 {
		t.Fatal("catalog size wrong")
	}
}

func TestPublicAPIInference(t *testing.T) {
	tr, err := cesrm.GenerateTrace(cesrm.TraceSpec{
		Name:         "apiinfer",
		Topology:     cesrm.TreeSpec{Receivers: 6, Depth: 3},
		NumPackets:   4000,
		Period:       40 * time.Millisecond,
		TargetLosses: 1000,
		Seed:         6,
	})
	if err != nil {
		t.Fatal(err)
	}
	y := cesrm.EstimateYajnik(tr)
	m := cesrm.EstimateMLE(tr)
	if len(y) != len(m) || len(y) != tr.Tree.NumLinks() {
		t.Fatal("estimator outputs mismatched")
	}
	res, err := cesrm.Infer(tr, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence(0.95) <= 0 {
		t.Fatal("no inference confidence")
	}
}

// TestPublicAPIChaos drives the fault-injection harness through the
// facade: parse a fault spec, run a trace under churn, and replay it to
// the identical fingerprint.
func TestPublicAPIChaos(t *testing.T) {
	tr, err := cesrm.GenerateTrace(cesrm.TraceSpec{
		Name:         "apichaos",
		Topology:     cesrm.TreeSpec{Receivers: 8, Depth: 3},
		NumPackets:   300,
		Period:       80 * time.Millisecond,
		TargetLosses: 90,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	victim := tr.Tree.Receivers()[0]
	spec, err := cesrm.ParseChaosSpec(fmt.Sprintf(
		"crash@5s:host=%d,purge;restart@9s:host=%d;jitter@4s-6s:max=2ms", victim, victim))
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(tr.Tree); err != nil {
		t.Fatal(err)
	}
	res, err := cesrm.VerifyDeterminism(cesrm.RunConfig{
		Trace: tr, Protocol: cesrm.CESRM, Seed: 3, Chaos: spec,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint == "" {
		t.Fatal("chaos run produced no fingerprint")
	}
	if got := len(cesrm.ChaosScenarios(tr.Tree, 30*time.Second)); got < 6 {
		t.Fatalf("scenario matrix has %d entries, want at least 6", got)
	}
}

// TestPublicAPIManualAssembly builds a simulation from the low-level
// public pieces, without the experiment harness.
func TestPublicAPIManualAssembly(t *testing.T) {
	eng := cesrm.NewEngine()
	tree, err := cesrm.NewTree([]cesrm.NodeID{cesrm.None, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	net, err := cesrm.NewNetwork(eng, tree, cesrm.DefaultNetworkConfig())
	if err != nil {
		t.Fatal(err)
	}
	collector := cesrm.NewCollector()
	rng := cesrm.NewRNG(1)

	agents := map[cesrm.NodeID]*cesrm.Agent{}
	for _, id := range []cesrm.NodeID{0, 2, 3} {
		a, err := cesrm.NewAgent(eng, net, rng.Split(), id, cesrm.DefaultConfig(), collector)
		if err != nil {
			t.Fatal(err)
		}
		agents[id] = a
		a.StartSessions()
	}
	// Drop packet 1 on receiver 2's leaf link.
	net.SetDropFunc(func(p *cesrm.Packet, link cesrm.NodeID, down bool) bool {
		m, ok := p.Msg.(*cesrm.DataMsg)
		return ok && down && link == 2 && m.Seq == 1
	})
	for i := 0; i < 3; i++ {
		seq := i
		eng.ScheduleAt(cesrm.Time(3*time.Second)+cesrm.Time(time.Duration(i)*100*time.Millisecond), func(cesrm.Time) {
			agents[0].Transmit(seq)
		})
	}
	eng.RunUntil(cesrm.Time(20 * time.Second))
	for _, a := range agents {
		a.Stop()
	}
	eng.Run()
	if agents[2].SRM().MissingIn(0, 3) != 0 {
		t.Fatal("manual assembly failed to recover")
	}
	if len(collector.Recoveries()) == 0 {
		t.Fatal("no recoveries observed")
	}
}
