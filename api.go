package cesrm

import (
	"io"
	"time"

	"cesrm/internal/chaos"
	"cesrm/internal/core"
	"cesrm/internal/experiment"
	"cesrm/internal/lossinfer"
	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/soak"
	"cesrm/internal/srm"
	"cesrm/internal/stats"
	"cesrm/internal/topology"
	"cesrm/internal/trace"
	"cesrm/internal/wire"
)

// ---- Simulation core ----

// Engine is the deterministic discrete-event engine driving every
// simulation; see NewEngine.
type Engine = sim.Engine

// Time is an instant of virtual time.
type Time = sim.Time

// Timer handles cancellable scheduled events.
type Timer = sim.Timer

// RNG is the seeded random source all protocol randomness flows through.
type RNG = sim.RNG

// Budget holds the engine's optional guardrails: bounds on virtual
// time, dispatched events and pending timers, plus the same-instant
// progress watchdog. The zero value disables every guardrail.
type Budget = sim.Budget

// TerminationStatus reports how an engine run ended (Completed, or
// which guardrail tripped).
type TerminationStatus = sim.TerminationStatus

// Termination statuses.
const (
	Completed             = sim.Completed
	DeadlineExceeded      = sim.DeadlineExceeded
	EventBudgetExceeded   = sim.EventBudgetExceeded
	PendingBudgetExceeded = sim.PendingBudgetExceeded
	Stalled               = sim.Stalled
)

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine { return sim.NewEngine() }

// NewRNG returns a deterministic random source.
func NewRNG(seed int64) *RNG { return sim.NewRNG(seed) }

// ---- Topology ----

// NodeID identifies a node of the multicast tree.
type NodeID = topology.NodeID

// None is the "no node" sentinel.
const None = topology.None

// Tree is an immutable rooted multicast tree.
type Tree = topology.Tree

// TreeSpec parameterizes random tree generation.
type TreeSpec = topology.GenSpec

// NewTree builds a tree from a parent vector (None marks the root).
func NewTree(parents []NodeID) (*Tree, error) { return topology.New(parents) }

// GenerateTree builds a random multicast tree.
func GenerateTree(rng *RNG, spec TreeSpec) (*Tree, error) { return topology.Generate(rng, spec) }

// ---- Network ----

// Network simulates packet transport over a tree.
type Network = netsim.Network

// NetworkConfig holds link delay, bandwidth, packet sizes and queuing.
type NetworkConfig = netsim.Config

// Packet is a message in flight.
type Packet = netsim.Packet

// Host consumes delivered packets.
type Host = netsim.Host

// DropFunc injects per-link packet loss.
type DropFunc = netsim.DropFunc

// CrossingCounts aggregates link-crossing transmission cost.
type CrossingCounts = netsim.CrossingCounts

// NetworkConfigError is the typed error NewNetwork returns for a
// configuration that fails validation.
type NetworkConfigError = netsim.ConfigError

// NewNetwork builds a network over tree. It returns a
// *NetworkConfigError when cfg fails validation (non-positive
// LinkDelay, Bandwidth, or PayloadBytes; negative ControlBytes).
func NewNetwork(eng *Engine, tree *Tree, cfg NetworkConfig) (*Network, error) {
	return netsim.New(eng, tree, cfg)
}

// DefaultNetworkConfig returns the paper's physical parameters
// (20 ms links, 1.5 Mbps, 1 KB payloads, 0-byte control).
func DefaultNetworkConfig() NetworkConfig { return netsim.DefaultConfig() }

// ---- SRM ----

// SRMParams are SRM's scheduling parameters (C1..C3, D1..D3, session
// period).
type SRMParams = srm.Params

// AdaptiveConfig enables Floyd-style adaptive timer adjustment.
type AdaptiveConfig = srm.AdaptiveConfig

// DistanceMode selects the session-message distance estimator.
type DistanceMode = srm.DistanceMode

// Distance estimator modes.
const (
	DistOneWay  = srm.DistOneWay
	DistEchoRTT = srm.DistEchoRTT
)

// SRMAgent is one SRM protocol endpoint.
type SRMAgent = srm.Agent

// Protocol message types, exposed so loss-injection hooks can
// discriminate traffic classes.
type (
	// DataMsg is an original data packet.
	DataMsg = srm.DataMsg
	// RequestMsg is a repair request (multicast, or unicast when
	// expedited).
	RequestMsg = srm.RequestMsg
	// ReplyMsg is a repair reply (retransmission).
	ReplyMsg = srm.ReplyMsg
	// SessionMsg is a periodic group session message.
	SessionMsg = srm.SessionMsg
)

// Observer receives protocol events for metrics collection.
type Observer = srm.Observer

// RecoveryInfo describes how a loss was recovered.
type RecoveryInfo = srm.RecoveryInfo

// DefaultSRMParams returns the paper's SRM settings (C1=C2=2, C3=1.5,
// D1=D2=1, D3=1.5, 1 s sessions).
func DefaultSRMParams() SRMParams { return srm.DefaultParams() }

// DefaultAdaptiveConfig returns an enabled adaptive-timer configuration.
func DefaultAdaptiveConfig() AdaptiveConfig { return srm.DefaultAdaptiveConfig() }

// NewSRMAgent constructs an SRM endpoint at node id and registers it
// with the network.
func NewSRMAgent(eng *Engine, net *Network, rng *RNG, id NodeID, p SRMParams, obs Observer) (*SRMAgent, error) {
	return srm.NewAgent(eng, net, rng, id, p, obs, nil)
}

// ---- CESRM ----

// Agent is one CESRM protocol endpoint: SRM plus the caching-based
// expedited recovery scheme.
type Agent = core.Agent

// Config parameterizes a CESRM endpoint (SRM params, reorder delay,
// cache capacity, policy, router assistance).
type Config = core.Config

// Tuple is one cached requestor/replier record.
type Tuple = core.Tuple

// Cache is a per-source requestor/replier cache.
type Cache = core.Cache

// Policy selects the expeditious requestor/replier pair.
type Policy = core.Policy

// MostRecentLoss is the paper's preferred expedition policy.
type MostRecentLoss = core.MostRecentLoss

// MostFrequentLoss selects the most frequent cached pair.
type MostFrequentLoss = core.MostFrequentLoss

// DefaultConfig returns the paper's CESRM configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewAgent constructs a CESRM endpoint at node id and registers it with
// the network.
func NewAgent(eng *Engine, net *Network, rng *RNG, id NodeID, cfg Config, obs Observer) (*Agent, error) {
	return core.NewAgent(eng, net, rng, id, cfg, obs)
}

// ---- Traces ----

// Trace is a single-source IP multicast transmission trace.
type Trace = trace.Trace

// TraceSpec parameterizes synthetic trace generation.
type TraceSpec = trace.GenSpec

// CatalogEntry is one row of the paper's Table 1 with its generation
// parameters.
type CatalogEntry = trace.CatalogEntry

// LocalityStats quantifies a trace's packet-loss locality.
type LocalityStats = trace.LocalityStats

// TraceCatalog returns the 14 Table 1 entries.
func TraceCatalog() []CatalogEntry { return trace.Catalog }

// TraceByName looks up a Table 1 entry.
func TraceByName(name string) (CatalogEntry, bool) { return trace.ByName(name) }

// GenerateTrace builds a synthetic trace.
func GenerateTrace(spec TraceSpec) (*Trace, error) { return trace.Generate(spec) }

// AnalyzeLocality computes loss-locality statistics.
func AnalyzeLocality(t *Trace) LocalityStats { return trace.AnalyzeLocality(t) }

// MarshalTrace writes a trace in the text format.
func MarshalTrace(w io.Writer, t *Trace) error { return trace.Marshal(w, t) }

// UnmarshalTrace parses a trace in the text format.
func UnmarshalTrace(r io.Reader) (*Trace, error) { return trace.Unmarshal(r) }

// ---- Loss inference (§4.2) ----

// LinkRates maps links to estimated loss probabilities.
type LinkRates = lossinfer.LinkRates

// InferenceResult is the link trace representation plus confidence
// statistics.
type InferenceResult = lossinfer.Result

// EstimateYajnik estimates link loss rates with the subtree estimator.
func EstimateYajnik(t *Trace) LinkRates { return lossinfer.EstimateYajnik(t) }

// EstimateMLE estimates link loss rates with the Cáceres MINC MLE.
func EstimateMLE(t *Trace) LinkRates { return lossinfer.EstimateMLE(t) }

// Infer attributes every lost packet to its most probable link
// combination.
func Infer(t *Trace, rates LinkRates) (*InferenceResult, error) { return lossinfer.Infer(t, rates) }

// ---- Metrics ----

// Collector accumulates protocol events into the paper's metrics.
type Collector = stats.Collector

// Recovery records one completed loss recovery.
type Recovery = stats.Recovery

// NewCollector returns an empty metrics collector.
func NewCollector() *Collector { return stats.New() }

// ProtocolEvent is one entry of a run's ordered protocol-event stream
// (see RunResult.Events).
type ProtocolEvent = stats.Event

// WriteEventsNDJSON writes a protocol-event stream as newline-delimited
// JSON, one object per event — a run's debugging timeline.
func WriteEventsNDJSON(w io.Writer, events []ProtocolEvent) error {
	return stats.WriteEventsNDJSON(w, events)
}

// ---- Evaluation harness ----

// Protocol selects SRM or CESRM for a run.
type Protocol = experiment.Protocol

// Protocol values.
const (
	SRM   = experiment.SRM
	CESRM = experiment.CESRM
	LMS   = experiment.LMS
)

// RunConfig parameterizes one trace-driven run.
type RunConfig = experiment.RunConfig

// RunResult carries a completed run's metrics.
type RunResult = experiment.RunResult

// Pair couples the SRM and CESRM runs of one trace.
type Pair = experiment.Pair

// PairConfig parameterizes RunPair.
type PairConfig = experiment.PairConfig

// Suite reenacts catalog traces under both protocols.
type Suite = experiment.Suite

// SuiteResult is one trace's pair within a suite.
type SuiteResult = experiment.SuiteResult

// Run reenacts a trace under one protocol.
func Run(cfg RunConfig) (*RunResult, error) { return experiment.Run(cfg) }

// RunPair reenacts a trace under both protocols.
func RunPair(t *Trace, cfg PairConfig) (*Pair, error) { return experiment.RunPair(t, cfg) }

// VerifyDeterminism runs cfg once, reruns it extra more times, and
// fails if any rerun's RunResult.Fingerprint diverges from the first —
// the determinism audit behind `cesrm-sim -verify-determinism`.
func VerifyDeterminism(cfg RunConfig, extra int) (*RunResult, error) {
	return experiment.VerifyDeterminism(cfg, extra)
}

// ---- Wire mode ----

// WireNodeConfig describes one real-UDP group member: tree, identity,
// protocol, seed, source schedule, and nominal network parameters.
type WireNodeConfig = wire.NodeConfig

// WireNode is one live wire-mode process: a protocol agent driven from
// real UDP sockets under a wall clock, optionally recording a capture.
type WireNode = wire.Node

// WireResult summarizes a completed wire-node run.
type WireResult = wire.Result

// WireProtocol selects which agent a wire node runs.
type WireProtocol = wire.Protocol

// Wire protocols.
const (
	WireSRM   = wire.ProtocolSRM
	WireCESRM = wire.ProtocolCESRM
)

// WireProxy is the drop-injecting loopback forwarder used to make loss
// reproducible in localhost harness runs.
type WireProxy = wire.Proxy

// WireCapture is a parsed NDJSON capture of one node's run.
type WireCapture = wire.Capture

// WireReport is the outcome of replaying a capture through the
// deterministic simulator.
type WireReport = wire.Report

// WireDivergence is one conformance mismatch between a live capture and
// its replay.
type WireDivergence = wire.Divergence

// NewWireNode builds a wire node bound to bind (e.g. "127.0.0.1:0");
// captureW, when non-nil, receives the NDJSON capture.
func NewWireNode(cfg WireNodeConfig, bind string, captureW io.Writer) (*WireNode, error) {
	return wire.NewNode(cfg, bind, captureW)
}

// NewWireProxy binds the drop-injecting forwarder with the given drop
// probability for data and repair packets, seeded for reproducibility.
func NewWireProxy(bind string, dropProb float64, seed int64) (*WireProxy, error) {
	return wire.NewProxy(bind, dropProb, seed)
}

// ReadWireCapture parses an NDJSON capture.
func ReadWireCapture(r io.Reader) (*WireCapture, error) { return wire.ReadCapture(r) }

// ReplayWireCapture replays a capture through the deterministic
// simulator and reports every divergence from the live run — the
// conformance oracle behind `cesrm-node -mode conform`.
func ReplayWireCapture(c *WireCapture) (*WireReport, error) { return wire.Replay(c) }

// LoadWireTree parses a cesrm-node tree file (a parent vector; -1 marks
// the root, '#' starts a comment).
func LoadWireTree(path string) (*Tree, error) { return wire.LoadTree(path) }

// EncodePacket appends a packet's versioned wire encoding to buf. The
// packet's message type must be registered (all SRM/CESRM/LMS messages
// are).
func EncodePacket(buf []byte, p *Packet) ([]byte, error) { return netsim.EncodePacket(buf, p) }

// DecodePacket parses one wire-encoded packet; malformed input yields
// an error, never a panic.
func DecodePacket(data []byte) (*Packet, error) { return netsim.DecodePacket(data) }

// ---- Fault injection ----

// ChaosSpec is a deterministic fault-injection schedule; assign one to
// RunConfig.Chaos to run a trace under churn.
type ChaosSpec = chaos.Spec

// ChaosFault is one scheduled fault of a ChaosSpec.
type ChaosFault = chaos.Fault

// ChaosKind discriminates fault kinds.
type ChaosKind = chaos.Kind

// Fault kinds.
const (
	ChaosCrash     = chaos.Crash
	ChaosRestart   = chaos.Restart
	ChaosLinkDown  = chaos.LinkDown
	ChaosLinkUp    = chaos.LinkUp
	ChaosJitter    = chaos.Jitter
	ChaosDuplicate = chaos.Duplicate
	ChaosStarve    = chaos.Starve
)

// ParseChaosSpec parses the textual fault grammar
// ("kind@at[-until]:key=value,...", ";"-separated) behind
// `cesrm-sim -chaos`.
func ParseChaosSpec(text string) (*ChaosSpec, error) { return chaos.ParseSpec(text) }

// ChaosScenarios returns the named scenario matrix for tree, with fault
// instants placed inside horizon — the sweep behind
// `cesrm-bench -chaos-matrix`.
func ChaosScenarios(tree *Tree, horizon time.Duration) []*ChaosSpec {
	return chaos.Scenarios(tree, horizon)
}

// ---- Soak harness ----

// SoakConfig parameterizes a chaos-fuzzing soak campaign.
type SoakConfig = soak.Config

// SoakResult summarizes a soak campaign.
type SoakResult = soak.Result

// SoakFailure is one classified soak trial failure.
type SoakFailure = soak.Failure

// SoakEntry is one replayable corpus scenario
// (testdata/soak-corpus/*.spec).
type SoakEntry = soak.Entry

// Soak runs a seeded chaos-fuzzing campaign — the harness behind
// `cesrm-soak`.
func Soak(cfg SoakConfig) (*SoakResult, error) { return soak.Run(cfg) }

// DefaultSoakBudget returns the soak harness's guardrail configuration.
func DefaultSoakBudget() Budget { return soak.DefaultBudget() }
